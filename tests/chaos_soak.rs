//! Seeded chaos soak for the resilient RPC plane (ISSUE 5 capstone).
//!
//! For each of three fixed seeds the soak deploys a small dynamic KV
//! service, then layers every fault class the fabric offers on top of a
//! live write workload:
//!
//! * probabilistic drops on the client's links (absorbed by retries),
//! * a partition isolating the client from the whole service,
//! * one blackholed member, detected by SWIM and rebuilt from its
//!   checkpoint on a spare node by the [`ResilienceManager`].
//!
//! Invariants checked after the fabric heals:
//!
//! 1. **Zero acked-write loss** — every `put` that returned `Ok` is
//!    readable afterwards, including writes to the blackholed member's
//!    database (checkpointed before the blackhole, served by the
//!    recovered incarnation that [`FailoverKv`] re-resolves).
//! 2. **Breaker convergence** — breakers tripped during the chaos window
//!    re-close (probe succeeds) for every destination still in the SSG
//!    view; the dead incarnation's breaker is excluded by the view.
//! 3. **No silent retry of non-idempotent RPCs** — a server-side
//!    invocation counter proves an undeclared RPC is sent exactly once
//!    per logical call even when the fabric eats the request.
//! 4. **Bounded post-heal latency** — once breakers are closed again an
//!    operation completes in ordinary time, not a retry-storm multiple.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde_json::json;

use mochi_rs::core::{
    Cluster, DynamicService, FailoverKv, ResilienceConfig, ResilienceManager, ServiceConfig,
};
use mochi_rs::margo::{MargoConfig, MargoRuntime};
use mochi_rs::mercury::{Address, LinkScript};
use mochi_rs::util::time::wait_until;

const SEEDS: [u64; 3] = [1, 2, 3];

fn kv_namer(i: usize) -> Vec<mochi_rs::bedrock::ProviderSpec> {
    vec![mochi_rs::bedrock::ProviderSpec::new(format!("db{i}"), "yokan", 10 + i as u16)
        .with_config(json!({"backend": "lsm"}))]
}

/// Client runtime tuned so the soak exercises the whole resilience
/// machinery quickly: short backoffs, a low breaker threshold, and a
/// probe interval the convergence assertion can wait out.
fn soak_client(cluster: &Cluster, seed: u64) -> MargoRuntime {
    let mut config = MargoConfig::default();
    config.retry.max_attempts = 4;
    config.retry.base_backoff_ms = 2;
    config.retry.max_backoff_ms = 20;
    config.retry.seed = seed;
    config.breaker.failure_threshold = 4;
    config.breaker.probe_interval_ms = 100;
    MargoRuntime::init(cluster.fabric(), Address::tcp("client", 1), &config).unwrap()
}

/// Address of the member currently hosting `provider`, per the service's
/// own records.
fn host_of(service: &DynamicService, provider: &str) -> Address {
    service
        .addresses()
        .into_iter()
        .find(|a| {
            service
                .server(a)
                .is_some_and(|s| s.provider_names().contains(&provider.to_string()))
        })
        .unwrap_or_else(|| panic!("{provider} is hosted nowhere"))
}

fn run_soak(seed: u64) {
    let cluster = Cluster::new(4); // 3 members + 1 spare for recovery
    let faults = cluster.fabric().faults();
    faults.set_seed(seed);

    let service = DynamicService::deploy(&cluster, ServiceConfig::default(), 3, kv_namer).unwrap();
    assert!(wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
        service.view().is_some_and(|v| v.len() == 3)
    }));
    let manager = ResilienceManager::attach(
        &service,
        ResilienceConfig { checkpoint_interval: Duration::from_millis(50), auto_recover: true },
    );

    let client = soak_client(&cluster, seed);
    let db0 = FailoverKv::new(&service, &client, "db0")
        .with_timeout(Duration::from_millis(100))
        .with_max_rounds(60);
    let db2 = FailoverKv::new(&service, &client, "db2")
        .with_timeout(Duration::from_millis(100))
        .with_max_rounds(60);

    // ---- Phase A: baseline writes on a healthy fabric -----------------
    let mut acked: Vec<(u32, &'static str)> = Vec::new();
    for i in 0..10u32 {
        db0.put(format!("a{i}").as_bytes(), b"baseline").unwrap();
        acked.push((i, "a"));
    }
    // Seed the soon-to-be-blackholed member's database, then wait for two
    // checkpoint sweeps so the acked writes are durably captured before
    // the member dies — recovery restores from checkpoint, and "acked"
    // only means "survives" once a sweep has seen it.
    for i in 0..10u32 {
        db2.put(format!("c{i}").as_bytes(), b"checkpointed").unwrap();
        acked.push((i, "c"));
    }
    let swept = manager.stats().checkpoints.load(Ordering::SeqCst);
    assert!(
        wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
            manager.stats().checkpoints.load(Ordering::SeqCst) >= swept + 2
        }),
        "checkpoint sweeps stalled"
    );

    // ---- Phase B: chaos ----------------------------------------------
    // Lossy links in both directions between the client and the world.
    faults.set_drop_probability(Some("client"), None, 0.15);
    faults.set_drop_probability(None, Some("client"), 0.15);
    // One blackholed member: peers only learn through SWIM timeouts.
    let victim = host_of(&service, "db2");
    faults.blackhole(&victim);

    // Writes keep flowing through the lossy fabric; every Ok is recorded.
    for i in 10..25u32 {
        if db0.put(format!("a{i}").as_bytes(), b"during-drops").is_ok() {
            acked.push((i, "a"));
        }
    }

    // Partition the client away from everything. Writes in this window
    // must fail — quickly trip the db0 breaker — and must NOT be acked.
    faults.set_partition(&[vec!["client".to_string()]]);
    let quick = FailoverKv::new(&service, &client, "db0")
        .with_timeout(Duration::from_millis(50))
        .with_max_rounds(3);
    for i in 0..4u32 {
        assert!(
            quick.put(format!("p{i}").as_bytes(), b"partitioned").is_err(),
            "a write during a full partition must not be acked"
        );
    }
    faults.heal_partition();

    // Meanwhile SWIM notices the blackholed member and the manager
    // rebuilds db2 from its checkpoint on the spare node.
    assert!(
        wait_until(Duration::from_secs(30), Duration::from_millis(20), || {
            manager.stats().recoveries.load(Ordering::SeqCst) >= 1
                && !service.addresses().contains(&victim)
        }),
        "blackholed member was not replaced"
    );
    // Retire the zombie before lifting the blackhole: the original
    // process must not rejoin the group its replacement now serves.
    cluster.crash(&victim).unwrap();

    // ---- Phase C: heal ------------------------------------------------
    faults.clear();
    for i in 25..35u32 {
        db0.put(format!("a{i}").as_bytes(), b"after-heal").unwrap();
        acked.push((i, "a"));
    }

    // Invariant 1: zero acked-write loss, across failover for db2.
    for (i, series) in &acked {
        let (kv, key) = match *series {
            "a" => (&db0, format!("a{i}")),
            _ => (&db2, format!("c{i}")),
        };
        assert!(
            kv.get(key.as_bytes()).unwrap().is_some(),
            "acked write {key} lost after heal (seed {seed})"
        );
    }

    // Invariant 2: breakers re-close for every destination still in the
    // view, within the probe interval (plus scheduling slack). Post-heal
    // traffic above supplied the successful probes.
    assert!(
        wait_until(Duration::from_secs(5), Duration::from_millis(20), || {
            let Some(view) = service.view() else { return false };
            let _ = db0.len(); // keep probe traffic flowing
            client.breakers().all_closed_among(|addr| view.contains(addr))
        }),
        "breakers did not re-close after heal (seed {seed})"
    );

    // Invariant 4: with breakers closed an op completes in ordinary
    // time — not a retry-storm or probe-cycle multiple.
    let t0 = Instant::now();
    db0.put(b"final", b"latency-probe").unwrap();
    assert!(
        t0.elapsed() < Duration::from_millis(500),
        "post-heal latency unbounded: {:?} (seed {seed})",
        t0.elapsed()
    );

    manager.stop();
    service.shutdown();
    client.finalize();
}

#[test]
fn chaos_soak_is_safe_across_seeds() {
    for seed in SEEDS {
        run_soak(seed);
    }
}

/// Invariant 3: an RPC that was never declared idempotent is sent exactly
/// once per logical call, even when the fabric eats the request — the
/// server-side counter is the ground truth, the client's monitoring the
/// cross-check.
#[test]
fn non_idempotent_rpc_is_sent_exactly_once_under_faults() {
    let cluster = Cluster::new(1);
    let faults = cluster.fabric().faults();
    faults.set_seed(7);

    let aux_addr = Address::tcp("aux", 1);
    let server = MargoRuntime::init_default(cluster.fabric(), aux_addr.clone()).unwrap();
    let hits = Arc::new(AtomicU64::new(0));
    let hits_on_server = Arc::clone(&hits);
    let rpc_id = server
        .register_typed::<u64, u64, _>("soak_incr", 0, None, move |n, _| {
            Ok(hits_on_server.fetch_add(n, Ordering::SeqCst) + n)
        })
        .unwrap();

    let client = soak_client(&cluster, 7);
    // Eat the first request on the client → aux link. A retryable
    // timeout results, but "soak_incr" was never declared idempotent, so
    // the runtime must not re-send it.
    faults.push_script(Some("client"), Some("aux"), LinkScript::FailFirst(1));
    let err = client
        .forward_timeout::<u64, u64>(&aux_addr, "soak_incr", 0, &1, Duration::from_millis(80))
        .unwrap_err();
    assert!(err.is_timeout(), "expected a timeout, got {err:?}");
    assert_eq!(hits.load(Ordering::SeqCst), 0, "dropped request must not be re-sent");

    // The client's own monitoring agrees: one timeout, zero retries.
    let stats = client.monitoring_json().expect("monitoring enabled by default");
    let peer = &stats["rpcs"][format!("65535:65535:{rpc_id}:0")]["origin"]
        [format!("sent to {aux_addr}")];
    assert_eq!(peer["retries"], 0);
    assert_eq!(peer["errors"]["timeout"], 1);

    // With the script exhausted the same call goes through — once.
    faults.clear_scripts(Some("client"), Some("aux"));
    let total: u64 = client
        .forward_timeout(&aux_addr, "soak_incr", 0, &1, Duration::from_millis(80))
        .unwrap();
    assert_eq!(total, 1);
    assert_eq!(hits.load(Ordering::SeqCst), 1);

    client.finalize();
    server.finalize();
}
