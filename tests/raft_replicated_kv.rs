//! The composability claim of §2.3, end to end: "individual Yokan
//! instances are unaware of their database being RAFT-replicated across
//! nodes, while Mochi-RAFT itself does not need to know that the commands
//! it logs represent Yokan key-value pairs."
//!
//! We wrap an unmodified Yokan backend in a Raft state machine: commands
//! are opaque serialized KV operations; Raft orders and replicates them;
//! each node applies them to its own plain `MemoryDatabase`. Neither side
//! was changed to know about the other.

use std::sync::Arc;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use mochi_rs::margo::MargoRuntime;
use mochi_rs::mercury::{Address, Fabric};
use mochi_rs::raft::{RaftClient, RaftConfig, RaftNode, StateMachine};
use mochi_rs::util::time::wait_until;
use mochi_rs::util::TempDir;
use mochi_rs::yokan::backend::memory::MemoryDatabase;
use mochi_rs::yokan::Database;

/// The opaque command format — Raft never parses it, Yokan never sees it.
#[derive(Debug, Serialize, Deserialize)]
enum KvCommand {
    Put { key: Vec<u8>, value: Vec<u8> },
    Erase { key: Vec<u8> },
}

/// A state machine over an *unmodified* Yokan backend.
struct YokanMachine {
    db: Arc<MemoryDatabase>,
}

impl StateMachine for YokanMachine {
    fn apply(&mut self, command: &[u8]) -> Vec<u8> {
        match serde_json::from_slice(command) {
            Ok(KvCommand::Put { key, value }) => {
                self.db.put(&key, &value).unwrap();
                vec![1]
            }
            Ok(KvCommand::Erase { key }) => {
                let existed = self.db.erase(&key).unwrap();
                vec![u8::from(existed)]
            }
            Err(_) => vec![0],
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        serde_json::to_vec(&self.db.dump().unwrap()).unwrap()
    }

    fn restore(&mut self, snapshot: &[u8]) {
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = serde_json::from_slice(snapshot).unwrap_or_default();
        self.db.clear().unwrap();
        self.db.load(&pairs).unwrap();
    }
}

#[test]
fn raft_replicated_yokan_database() {
    let fabric = Fabric::new();
    let dir = TempDir::new("raft-kv").unwrap();
    let addresses: Vec<Address> = (0..3).map(|i| Address::tcp(format!("kv{i}"), 1)).collect();
    let mut nodes = Vec::new();
    for (i, addr) in addresses.iter().enumerate() {
        let margo = MargoRuntime::init_default(&fabric, addr.clone()).unwrap();
        let db = Arc::new(MemoryDatabase::new());
        let node = RaftNode::start(
            &margo,
            5,
            &addresses,
            Box::new(YokanMachine { db: Arc::clone(&db) }),
            dir.path().join(format!("n{i}")),
            RaftConfig::fast(),
        )
        .unwrap();
        nodes.push((margo, node, db));
    }
    let client_margo = MargoRuntime::init_default(&fabric, Address::tcp("client", 1)).unwrap();
    let client = RaftClient::new(&client_margo, 5, addresses.clone());

    // Writes go through consensus.
    for i in 0..10u32 {
        let command = KvCommand::Put {
            key: format!("k{i}").into_bytes(),
            value: format!("v{i}").into_bytes(),
        };
        client.submit(&serde_json::to_vec(&command).unwrap()).unwrap();
    }
    let erase = KvCommand::Erase { key: b"k3".to_vec() };
    let existed = client.submit(&serde_json::to_vec(&erase).unwrap()).unwrap();
    assert_eq!(existed, vec![1]);

    // Every replica's *plain* Yokan backend converges to the same state.
    assert!(wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
        nodes.iter().all(|(_, _, db)| db.len().unwrap() == 9)
    }));
    for (_, _, db) in &nodes {
        assert_eq!(db.get(b"k5").unwrap().as_deref(), Some(b"v5".as_slice()));
        assert_eq!(db.get(b"k3").unwrap(), None);
    }

    // Kill the leader; the replicated database keeps accepting writes.
    let leader = client.find_leader().unwrap();
    let idx = addresses.iter().position(|a| *a == leader).unwrap();
    nodes[idx].1.shutdown();
    nodes[idx].0.finalize();
    let command = KvCommand::Put { key: b"after-failover".to_vec(), value: b"yes".to_vec() };
    client.submit(&serde_json::to_vec(&command).unwrap()).unwrap();
    assert!(wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
        nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != idx)
            .all(|(_, (_, _, db))| db.get(b"after-failover").unwrap().is_some())
    }));

    for (i, (margo, node, _)) in nodes.iter().enumerate() {
        if i != idx {
            node.shutdown();
            margo.finalize();
        }
    }
    client_margo.finalize();
}
